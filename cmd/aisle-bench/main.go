// Command aisle-bench regenerates the experiment tables that reproduce the
// AISLE paper's milestone claims (see DESIGN.md for the experiment index).
//
// Usage:
//
//	aisle-bench [-quick] [-seed N] [-replicas N] [-list] [experiment IDs...]
//	aisle-bench -gpbench|-tracebench|-chaosbench|-obsbench|-profile
//	aisle-bench -diff old.json new.json
//
// With no IDs, every experiment runs in order. Results print as aligned
// text tables, one per claim, matching EXPERIMENTS.md.
//
// The recorder flags regenerate the checked-in BENCH_*.json artifacts,
// all under the unified aisle/bench/v2 schema (internal/bench). -diff
// judges a fresh artifact against a checked-in baseline metric by
// metric using the baseline's own noise bounds, and exits nonzero when
// anything regressed — the CI perf gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/aisle-sim/aisle/internal/bench"
	"github.com/aisle-sim/aisle/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "shrink workloads (CI mode)")
	seed := flag.Uint64("seed", 42, "experiment seed")
	replicas := flag.Int("replicas", 0, "replicas per condition (0 = default)")
	list := flag.Bool("list", false, "list experiments and exit")
	gpbench := flag.Bool("gpbench", false, "benchmark the GP/BO engine and record BENCH_optimize.json")
	gpmacro := flag.Bool("macro", false, "with -gpbench, include the 200-campaign scheduler macro benchmarks")
	gpout := flag.String("out", "BENCH_optimize.json", "with -gpbench, the report path")
	tracebench := flag.Bool("tracebench", false, "benchmark tracing overhead on the scheduler macro and record BENCH_trace.json")
	traceout := flag.String("traceout", "BENCH_trace.json", "with -tracebench, the report path")
	chaosbench := flag.Bool("chaosbench", false, "run the chaos matrix under invariant checking and record BENCH_chaos.json")
	chaosout := flag.String("chaosout", "BENCH_chaos.json", "with -chaosbench, the report path")
	obsbench := flag.Bool("obsbench", false, "benchmark health-engine overhead and attribution determinism and record BENCH_obs.json")
	obsout := flag.String("obsout", "BENCH_obs.json", "with -obsbench, the report path")
	profile := flag.Bool("profile", false, "benchmark continuous-profiler overhead and attribution on the scheduler macro and record BENCH_profile.json")
	profout := flag.String("profout", "BENCH_profile.json", "with -profile, the report path (folded stacks land next to it)")
	diff := flag.Bool("diff", false, "compare two bench artifacts: aisle-bench -diff old.json new.json")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-5s %s\n", id, experiments.Describe(id))
		}
		return
	}
	if *gpbench {
		if err := runGPBench(*gpout, *gpmacro); err != nil {
			fmt.Fprintf(os.Stderr, "aisle-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *tracebench {
		if err := runTraceBench(*traceout); err != nil {
			fmt.Fprintf(os.Stderr, "aisle-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *chaosbench {
		if err := runChaosBench(*chaosout); err != nil {
			fmt.Fprintf(os.Stderr, "aisle-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *obsbench {
		if err := runObsBench(*obsout); err != nil {
			fmt.Fprintf(os.Stderr, "aisle-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *profile {
		if err := runProfileBench(*profout); err != nil {
			fmt.Fprintf(os.Stderr, "aisle-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *diff {
		if err := runDiff(flag.Args()); err != nil {
			fmt.Fprintf(os.Stderr, "aisle-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	opts := experiments.Options{Seed: *seed, Quick: *quick, Replicas: *replicas}
	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}

	for _, id := range ids {
		start := time.Now()
		tables, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aisle-bench: %v\n", err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t.Render())
		}
		fmt.Printf("[%s completed in %.1fs wall]\n\n", id, time.Since(start).Seconds())
	}
}

// runDiff loads two artifacts, judges new against old, prints the table,
// and errors when any gated metric regressed beyond its noise bounds.
func runDiff(paths []string) error {
	if len(paths) != 2 {
		return fmt.Errorf("-diff wants exactly two paths (old.json new.json), got %d", len(paths))
	}
	old, err := bench.Load(paths[0])
	if err != nil {
		return err
	}
	cur, err := bench.Load(paths[1])
	if err != nil {
		return err
	}
	d, err := bench.Diff(old, cur)
	if err != nil {
		return err
	}
	fmt.Print(d.Render())
	if d.Failed() {
		return fmt.Errorf("%d metric(s) regressed beyond their noise bounds", d.Regressions)
	}
	return nil
}
