package main

// Shared metric policies for every recorder, so all BENCH_*.json
// artifacts judge drift the same way:
//
//   - wall time tolerates 35% relative drift (shared CI machines);
//   - heap bytes tolerate 10% plus a 4 KiB absolute floor;
//   - allocation counts tolerate 5% plus a small absolute floor (they
//     are near-deterministic, so tight bounds catch real leaks);
//   - virtual quantities (makespans, counts derived from the sim clock)
//     must reproduce bit-exactly: the simulation is deterministic, and
//     any drift means observability perturbed it.

import (
	"fmt"
	"os"
	"runtime"
	"strings"

	"github.com/aisle-sim/aisle/internal/bench"
)

func nsMetric(v int64) bench.Metric {
	return bench.Metric{Name: "ns_per_op", Value: float64(v), Unit: "ns",
		Better: bench.Lower, Noise: 0.35}
}

func bytesMetric(v int64) bench.Metric {
	return bench.Metric{Name: "bytes_per_op", Value: float64(v), Unit: "B",
		Better: bench.Lower, Noise: 0.10, AbsNoise: 4096}
}

func allocsMetric(v int64) bench.Metric {
	return bench.Metric{Name: "allocs_per_op", Value: float64(v),
		Better: bench.Lower, Noise: 0.05, AbsNoise: 64}
}

func makespanMetric(s float64) bench.Metric {
	return bench.Metric{Name: "virtual_makespan_s", Value: s, Unit: "s",
		Better: bench.Equal}
}

// exactMetric gates a deterministic count (spans recorded, sites hit).
func exactMetric(name string, v float64) bench.Metric {
	return bench.Metric{Name: name, Value: v, Better: bench.Equal}
}

// infoMetric records a value without gating it.
func infoMetric(name, unit string, v float64) bench.Metric {
	return bench.Metric{Name: name, Value: v, Unit: unit}
}

// newReport starts a suite artifact stamped with this machine.
func newReport(suite string, workload map[string]float64) *bench.Report {
	return &bench.Report{Name: suite, Machine: machineString(),
		GoMaxProcs: runtime.GOMAXPROCS(0), Workload: workload}
}

// machineString identifies the CPU for the artifact header; judgement
// never reads it, so a best-effort probe is fine.
func machineString() string {
	if raw, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(raw), "\n") {
			if name, ok := strings.CutPrefix(line, "model name"); ok {
				return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
			}
		}
	}
	return runtime.GOOS + "/" + runtime.GOARCH
}

// writeReport writes the artifact and prints its path.
func writeReport(r *bench.Report, outPath string) error {
	if err := r.WriteFile(outPath); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}
