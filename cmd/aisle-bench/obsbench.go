package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/aisle-sim/aisle/internal/experiments"
	"github.com/aisle-sim/aisle/internal/obs"
	"github.com/aisle-sim/aisle/internal/sim"
)

// obsModeResult is one health-engine mode's measurement in BENCH_obs.json.
type obsModeResult struct {
	NsPerOp          int64   `json:"ns_per_op"`
	BytesPerOp       int64   `json:"bytes_per_op"`
	AllocsPerOp      int64   `json:"allocs_per_op"`
	VirtualMakespanS float64 `json:"virtual_makespan_s"`
	Samples          int     `json:"slo_samples,omitempty"`
}

// Health-engine benchmark workloads: the overhead probe reuses the
// 200-campaign parallelism-4 scheduler macro behind SchedCampaignsP4, and
// the attribution probe reuses the proven chaos-matrix cell behind
// BENCH_chaos.json (15% intensity, self-healing on), so every checked-in
// number describes a scenario that already has a property test.
const (
	obsBenchIters   = 5
	obsChaosSeed    = 2
	obsChaosJobs    = 300
	obsChaosHorizon = 3 * sim.Hour
)

// The acceptance gates the bench enforces before writing the report.
const (
	obsMaxAllocOverheadPct = 2.0  // fully-enabled obs on the sched macro
	obsMinCoverage         = 0.95 // fault attribution over degraded jobs
)

// runObsBench measures the health engine's overhead on the scheduler macro
// (disabled vs fully enabled, virtual trajectories must match bit-exactly),
// then runs one chaos cell twice at a fixed seed to prove the flight
// recorder and incident reports are byte-deterministic and that fault
// attribution covers at least 95% of degraded jobs. Writes BENCH_obs.json.
func runObsBench(outPath string) error {
	modes := []struct {
		name string
		opts obs.Options
	}{
		{"disabled", obs.Options{}},
		{"enabled", obs.Options{Enabled: true}},
	}
	results := map[string]obsModeResult{}
	for _, m := range modes {
		r, err := measureObsMode(m.opts)
		if err != nil {
			return fmt.Errorf("%s: %w", m.name, err)
		}
		results[m.name] = r
	}

	dis, en := results["disabled"], results["enabled"]
	if en.VirtualMakespanS != dis.VirtualMakespanS {
		return fmt.Errorf("health engine perturbed the simulation: makespan %.3fs observed vs %.3fs bare",
			en.VirtualMakespanS, dis.VirtualMakespanS)
	}
	overhead := map[string]float64{
		"wall_pct":             pctDelta(en.NsPerOp, dis.NsPerOp),
		"allocs_pct":           pctDelta(en.AllocsPerOp, dis.AllocsPerOp),
		"virtual_makespan_pct": 0, // enforced equal above
	}
	if overhead["allocs_pct"] > obsMaxAllocOverheadPct {
		return fmt.Errorf("enabled health engine adds %.2f%% allocs on the sched macro (budget %.1f%%)",
			overhead["allocs_pct"], obsMaxAllocOverheadPct)
	}

	chaosRep, err := runObsChaosProbe()
	if err != nil {
		return err
	}

	report := map[string]any{
		"schema": "aisle/bench-obs/v1",
		"workload": map[string]any{
			"campaigns": macroCamps, "budget": macroBudget,
			"parallelism": 4, "iters": obsBenchIters,
			"chaos_seed": obsChaosSeed, "chaos_jobs": obsChaosJobs,
			"chaos_horizon_s": obsChaosHorizon.Seconds(),
		},
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"disabled":   dis,
		"enabled":    en,
		"overhead":   overhead,
		"chaos":      chaosRep,
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	for _, m := range modes {
		r := results[m.name]
		fmt.Printf("  %-9s %12d ns/op %12d B/op %10d allocs/op  makespan %.0fs  samples %d\n",
			m.name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.VirtualMakespanS, r.Samples)
	}
	fmt.Printf("  overhead  wall %+.2f%%  allocs %+.2f%%  virtual makespan +0%% (bit-exact)\n",
		overhead["wall_pct"], overhead["allocs_pct"])
	fmt.Printf("  chaos     coverage %.1f%%  incidents %d  snapshots %d  alerts %d  (byte-identical across reruns)\n",
		chaosRep["attribution_coverage"].(float64)*100, chaosRep["incidents"],
		chaosRep["snapshots"], chaosRep["alerts"])
	return nil
}

// measureObsMode runs the macro obsBenchIters times (seeds 42, 43, ...) and
// averages wall time and allocations; the reported makespan is the seed-42
// run's, so the two modes' virtual columns compare like for like.
func measureObsMode(opts obs.Options) (obsModeResult, error) {
	var out obsModeResult
	// One untimed warmup so neither mode pays first-run cache effects.
	if _, err := runObsMacroOnce(41, opts); err != nil {
		return out, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < obsBenchIters; i++ {
		res, err := runObsMacroOnce(uint64(42+i), opts)
		if err != nil {
			return out, err
		}
		if i == 0 {
			out.VirtualMakespanS = (res.Finish - res.Start).Seconds()
			if res.Health != nil {
				for _, s := range res.Health.Statuses() {
					out.Samples += int(s.Total)
					break // job-completion total is the representative stream
				}
			}
		}
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	out.NsPerOp = wall.Nanoseconds() / obsBenchIters
	out.BytesPerOp = int64(after.TotalAlloc-before.TotalAlloc) / obsBenchIters
	out.AllocsPerOp = int64(after.Mallocs-before.Mallocs) / obsBenchIters
	return out, nil
}

func runObsMacroOnce(seed uint64, opts obs.Options) (experiments.SaturationResult, error) {
	return experiments.RunSaturation(experiments.SaturationSpec{
		Seed:        seed,
		Campaigns:   macroCamps,
		Budget:      macroBudget,
		Parallelism: 4,
		Health:      opts,
	})
}

// runObsChaosProbe runs the 15%-intensity self-healing chaos cell twice at
// the same seed with the health engine on, asserts the flight-recorder
// snapshots and incident reports serialize byte-identically, and checks the
// attribution-coverage floor.
func runObsChaosProbe() (map[string]any, error) {
	type probe struct {
		res       experiments.ChaosResult
		snaps     []byte
		incidents []byte
	}
	runs := make([]probe, 2)
	for i := range runs {
		r, err := experiments.RunChaos(experiments.ChaosSpec{
			Seed:      obsChaosSeed,
			Jobs:      obsChaosJobs,
			Horizon:   obsChaosHorizon,
			Intensity: 0.15,
			Recovery:  true,
			Health:    obs.Options{Enabled: true},
		})
		if err != nil {
			return nil, fmt.Errorf("chaos probe run %d: %w", i, err)
		}
		var sb, ib bytes.Buffer
		if err := r.Health.WriteSnapshotsJSON(&sb); err != nil {
			return nil, err
		}
		if err := r.Health.WriteIncidentsJSON(&ib); err != nil {
			return nil, err
		}
		runs[i] = probe{res: r, snaps: sb.Bytes(), incidents: ib.Bytes()}
	}
	if !bytes.Equal(runs[0].snaps, runs[1].snaps) {
		return nil, fmt.Errorf("flight-recorder snapshots differ across identical runs (%d vs %d bytes)",
			len(runs[0].snaps), len(runs[1].snaps))
	}
	if !bytes.Equal(runs[0].incidents, runs[1].incidents) {
		return nil, fmt.Errorf("incident reports differ across identical runs (%d vs %d bytes)",
			len(runs[0].incidents), len(runs[1].incidents))
	}
	att := runs[0].res.Attribution
	if att.DegradedJobs > 0 && att.Coverage < obsMinCoverage {
		return nil, fmt.Errorf("attribution coverage %.1f%% below the %.0f%% floor (%d/%d degraded jobs attributed)",
			att.Coverage*100, obsMinCoverage*100, att.AttributedJobs, att.DegradedJobs)
	}
	r := runs[0].res
	prof := r.Health.Profile()
	return map[string]any{
		"completion_rate":      r.CompletionRate,
		"injections":           r.Injections,
		"degraded_jobs":        att.DegradedJobs,
		"attributed_jobs":      att.AttributedJobs,
		"attribution_coverage": att.Coverage,
		"incidents":            len(r.Incidents),
		"snapshots":            len(r.Health.Snapshots()),
		"alerts":               len(r.Health.Alerts()),
		"snapshot_bytes":       len(runs[0].snaps),
		"incident_bytes":       len(runs[0].incidents),
		"deterministic":        true, // enforced by the byte comparison above
		"spine_profile":        prof,
	}, nil
}
