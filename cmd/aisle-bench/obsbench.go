package main

import (
	"bytes"
	"fmt"
	"runtime"
	"time"

	"github.com/aisle-sim/aisle/internal/bench"
	"github.com/aisle-sim/aisle/internal/experiments"
	"github.com/aisle-sim/aisle/internal/obs"
	"github.com/aisle-sim/aisle/internal/sim"
)

// obsModeResult is one health-engine mode's measurement in BENCH_obs.json.
type obsModeResult struct {
	NsPerOp          int64
	BytesPerOp       int64
	AllocsPerOp      int64
	VirtualMakespanS float64
	Samples          int
}

// Health-engine benchmark workloads: the overhead probe reuses the
// 200-campaign parallelism-4 scheduler macro behind SchedCampaignsP4, and
// the attribution probe reuses the proven chaos-matrix cell behind
// BENCH_chaos.json (15% intensity, self-healing on), so every checked-in
// number describes a scenario that already has a property test.
const (
	obsBenchIters   = 5
	obsChaosSeed    = 2
	obsChaosJobs    = 300
	obsChaosHorizon = 3 * sim.Hour
)

// The acceptance gates the bench enforces before writing the report.
const (
	obsMaxAllocOverheadPct = 2.0  // fully-enabled obs on the sched macro
	obsMinCoverage         = 0.95 // fault attribution over degraded jobs
)

// runObsBench measures the health engine's overhead on the scheduler macro
// (disabled vs fully enabled, virtual trajectories must match bit-exactly),
// then runs one chaos cell twice at a fixed seed to prove the flight
// recorder and incident reports are byte-deterministic and that fault
// attribution covers at least 95% of degraded jobs. Writes BENCH_obs.json.
func runObsBench(outPath string) error {
	modes := []struct {
		name string
		opts obs.Options
	}{
		{"disabled", obs.Options{}},
		{"enabled", obs.Options{Enabled: true}},
	}
	results := map[string]obsModeResult{}
	for _, m := range modes {
		r, err := measureObsMode(m.opts)
		if err != nil {
			return fmt.Errorf("%s: %w", m.name, err)
		}
		results[m.name] = r
	}

	dis, en := results["disabled"], results["enabled"]
	if en.VirtualMakespanS != dis.VirtualMakespanS {
		return fmt.Errorf("health engine perturbed the simulation: makespan %.3fs observed vs %.3fs bare",
			en.VirtualMakespanS, dis.VirtualMakespanS)
	}
	overhead := map[string]float64{
		"wall_pct":             pctDelta(en.NsPerOp, dis.NsPerOp),
		"allocs_pct":           pctDelta(en.AllocsPerOp, dis.AllocsPerOp),
		"virtual_makespan_pct": 0, // enforced equal above
	}
	if overhead["allocs_pct"] > obsMaxAllocOverheadPct {
		return fmt.Errorf("enabled health engine adds %.2f%% allocs on the sched macro (budget %.1f%%)",
			overhead["allocs_pct"], obsMaxAllocOverheadPct)
	}

	probe, err := runObsChaosProbe()
	if err != nil {
		return err
	}

	report := newReport("obs", map[string]float64{
		"campaigns": macroCamps, "budget": macroBudget,
		"parallelism": 4, "iters": obsBenchIters,
		"chaos_seed": obsChaosSeed, "chaos_jobs": obsChaosJobs,
		"chaos_horizon_s": obsChaosHorizon.Seconds(),
	})
	for _, m := range modes {
		r := results[m.name]
		g := report.AddGroup(m.name, "").
			Add(nsMetric(r.NsPerOp)).
			Add(bytesMetric(r.BytesPerOp)).
			Add(allocsMetric(r.AllocsPerOp)).
			Add(makespanMetric(r.VirtualMakespanS))
		if m.opts.Enabled {
			g.Add(exactMetric("slo_samples", float64(r.Samples)))
		}
	}
	report.AddGroup("overhead", "enabled vs disabled").
		Add(infoMetric("wall_pct", "%", overhead["wall_pct"])).
		Add(infoMetric("allocs_pct", "%", overhead["allocs_pct"]))
	report.AddGroup("chaos", "15% intensity, self-healing, health on; byte-determinism enforced before writing").
		Add(bench.Metric{Name: "completion_rate", Value: probe.res.CompletionRate,
			Better: bench.Higher, AbsNoise: 0.02}).
		Add(exactMetric("injections", float64(probe.res.Injections))).
		Add(exactMetric("degraded_jobs", float64(probe.att.DegradedJobs))).
		Add(exactMetric("attributed_jobs", float64(probe.att.AttributedJobs))).
		Add(bench.Metric{Name: "attribution_coverage", Value: probe.att.Coverage,
			Better: bench.Higher, AbsNoise: 0.01}).
		Add(exactMetric("incidents", float64(probe.incidents))).
		Add(exactMetric("snapshots", float64(probe.snapshots))).
		Add(exactMetric("alerts", float64(probe.alerts))).
		Add(exactMetric("snapshot_bytes", float64(probe.snapshotBytes))).
		Add(exactMetric("incident_bytes", float64(probe.incidentBytes)))
	sp := probe.spine
	report.AddGroup("spine", "per-subsystem event totals from the chaos probe").
		Add(exactMetric("sim_events", float64(sp.SimEvents))).
		Add(exactMetric("net_delivered", float64(sp.NetDelivered))).
		Add(exactMetric("bus_delivered", float64(sp.BusDelivered))).
		Add(exactMetric("sched_dispatched", float64(sp.SchedDispatched))).
		Add(exactMetric("knowledge_merged", float64(sp.KnowledgeMerged))).
		Add(exactMetric("spans_held", float64(sp.SpansHeld))).
		Add(exactMetric("spans_dropped", float64(sp.SpansDropped)))
	if err := writeReport(report, outPath); err != nil {
		return err
	}
	for _, m := range modes {
		r := results[m.name]
		fmt.Printf("  %-9s %12d ns/op %12d B/op %10d allocs/op  makespan %.0fs  samples %d\n",
			m.name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.VirtualMakespanS, r.Samples)
	}
	fmt.Printf("  overhead  wall %+.2f%%  allocs %+.2f%%  virtual makespan +0%% (bit-exact)\n",
		overhead["wall_pct"], overhead["allocs_pct"])
	fmt.Printf("  chaos     coverage %.1f%%  incidents %d  snapshots %d  alerts %d  (byte-identical across reruns)\n",
		probe.att.Coverage*100, probe.incidents, probe.snapshots, probe.alerts)
	return nil
}

// measureObsMode runs the macro obsBenchIters times (seeds 42, 43, ...) and
// averages wall time and allocations; the reported makespan is the seed-42
// run's, so the two modes' virtual columns compare like for like.
func measureObsMode(opts obs.Options) (obsModeResult, error) {
	var out obsModeResult
	// One untimed warmup so neither mode pays first-run cache effects.
	if _, err := runObsMacroOnce(41, opts); err != nil {
		return out, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < obsBenchIters; i++ {
		res, err := runObsMacroOnce(uint64(42+i), opts)
		if err != nil {
			return out, err
		}
		if i == 0 {
			out.VirtualMakespanS = (res.Finish - res.Start).Seconds()
			if res.Health != nil {
				for _, s := range res.Health.Statuses() {
					out.Samples += int(s.Total)
					break // job-completion total is the representative stream
				}
			}
		}
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	out.NsPerOp = wall.Nanoseconds() / obsBenchIters
	out.BytesPerOp = int64(after.TotalAlloc-before.TotalAlloc) / obsBenchIters
	out.AllocsPerOp = int64(after.Mallocs-before.Mallocs) / obsBenchIters
	return out, nil
}

func runObsMacroOnce(seed uint64, opts obs.Options) (experiments.SaturationResult, error) {
	return experiments.RunSaturation(experiments.SaturationSpec{
		Seed:        seed,
		Campaigns:   macroCamps,
		Budget:      macroBudget,
		Parallelism: 4,
		Health:      opts,
	})
}

// obsChaosProbe is the distilled outcome of the determinism probe.
type obsChaosProbe struct {
	res                          experiments.ChaosResult
	att                          obs.AttributionStats
	spine                        obs.SpineProfile
	incidents, snapshots, alerts int
	snapshotBytes, incidentBytes int
}

// runObsChaosProbe runs the 15%-intensity self-healing chaos cell twice at
// the same seed with the health engine on, asserts the flight-recorder
// snapshots and incident reports serialize byte-identically, and checks the
// attribution-coverage floor.
func runObsChaosProbe() (obsChaosProbe, error) {
	type probe struct {
		res       experiments.ChaosResult
		snaps     []byte
		incidents []byte
	}
	runs := make([]probe, 2)
	for i := range runs {
		r, err := experiments.RunChaos(experiments.ChaosSpec{
			Seed:      obsChaosSeed,
			Jobs:      obsChaosJobs,
			Horizon:   obsChaosHorizon,
			Intensity: 0.15,
			Recovery:  true,
			Health:    obs.Options{Enabled: true},
		})
		if err != nil {
			return obsChaosProbe{}, fmt.Errorf("chaos probe run %d: %w", i, err)
		}
		var sb, ib bytes.Buffer
		if err := r.Health.WriteSnapshotsJSON(&sb); err != nil {
			return obsChaosProbe{}, err
		}
		if err := r.Health.WriteIncidentsJSON(&ib); err != nil {
			return obsChaosProbe{}, err
		}
		runs[i] = probe{res: r, snaps: sb.Bytes(), incidents: ib.Bytes()}
	}
	if !bytes.Equal(runs[0].snaps, runs[1].snaps) {
		return obsChaosProbe{}, fmt.Errorf("flight-recorder snapshots differ across identical runs (%d vs %d bytes)",
			len(runs[0].snaps), len(runs[1].snaps))
	}
	if !bytes.Equal(runs[0].incidents, runs[1].incidents) {
		return obsChaosProbe{}, fmt.Errorf("incident reports differ across identical runs (%d vs %d bytes)",
			len(runs[0].incidents), len(runs[1].incidents))
	}
	att := runs[0].res.Attribution
	if att.DegradedJobs > 0 && att.Coverage < obsMinCoverage {
		return obsChaosProbe{}, fmt.Errorf("attribution coverage %.1f%% below the %.0f%% floor (%d/%d degraded jobs attributed)",
			att.Coverage*100, obsMinCoverage*100, att.AttributedJobs, att.DegradedJobs)
	}
	r := runs[0].res
	return obsChaosProbe{
		res:           r,
		att:           att,
		spine:         r.Health.Profile(),
		incidents:     len(r.Incidents),
		snapshots:     len(r.Health.Snapshots()),
		alerts:        len(r.Health.Alerts()),
		snapshotBytes: len(runs[0].snaps),
		incidentBytes: len(runs[0].incidents),
	}, nil
}
