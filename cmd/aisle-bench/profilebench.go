package main

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/aisle-sim/aisle/internal/bench"
	"github.com/aisle-sim/aisle/internal/experiments"
	"github.com/aisle-sim/aisle/internal/prof"
)

// profModeResult is one profiler mode's measurement in BENCH_profile.json.
type profModeResult struct {
	NsPerOp          int64
	BytesPerOp       int64
	AllocsPerOp      int64
	VirtualMakespanS float64
}

// profDetail is the seed-42 enabled run's profile, kept for the artifact:
// the deterministic snapshot gates regeneration, the measured overlay and
// folded stacks feed perf analysis.
type profDetail struct {
	prof      *prof.Profiler
	runWallNs int64
}

const profBenchIters = 5

// The acceptance gates the bench enforces before writing the report.
const (
	profMaxAllocOverheadPct = 2.0  // enabled profiler on the sched macro
	profMinWallCoverage     = 0.90 // wall time attributed to named subsystems
)

// runProfileBench measures the continuous profiler's overhead on the same
// 200-campaign parallelism-4 scheduler macro as SchedCampaignsP4, once
// disabled (the production fast path) and once fully enabled. The virtual
// trajectories must match bit-exactly — the profiler observes the
// simulation, it never perturbs it — the enabled mode must stay within the
// 2% allocation budget, and the profiler must attribute at least 90% of
// the run's wall time to named subsystems. Writes BENCH_profile.json plus
// a flamegraph-ready folded-stack artifact next to it.
func runProfileBench(outPath string) error {
	dis, _, err := measureProfMode(prof.Options{})
	if err != nil {
		return fmt.Errorf("disabled: %w", err)
	}
	en, detail, err := measureProfMode(prof.Options{Enabled: true})
	if err != nil {
		return fmt.Errorf("enabled: %w", err)
	}
	if en.VirtualMakespanS != dis.VirtualMakespanS {
		return fmt.Errorf("profiler perturbed the simulation: makespan %.9fs profiled vs %.9fs bare",
			en.VirtualMakespanS, dis.VirtualMakespanS)
	}
	overhead := map[string]float64{
		"wall_pct":   pctDelta(en.NsPerOp, dis.NsPerOp),
		"allocs_pct": pctDelta(en.AllocsPerOp, dis.AllocsPerOp),
	}
	if overhead["allocs_pct"] > profMaxAllocOverheadPct {
		return fmt.Errorf("enabled profiler adds %.2f%% allocs on the sched macro (budget %.1f%%)",
			overhead["allocs_pct"], profMaxAllocOverheadPct)
	}
	coverage := float64(detail.prof.TotalWallNs()) / float64(detail.runWallNs)
	if coverage < profMinWallCoverage {
		return fmt.Errorf("profiler attributes %.1f%% of macro wall time (floor %.0f%%)",
			coverage*100, profMinWallCoverage*100)
	}

	snap := detail.prof.Snapshot()
	report := newReport("profile", map[string]float64{
		"campaigns": macroCamps, "budget": macroBudget,
		"parallelism": 4, "iters": profBenchIters,
	})
	for _, m := range []struct {
		name string
		r    profModeResult
	}{{"disabled", dis}, {"enabled", en}} {
		report.AddGroup(m.name, "").
			Add(nsMetric(m.r.NsPerOp)).
			Add(bytesMetric(m.r.BytesPerOp)).
			Add(allocsMetric(m.r.AllocsPerOp)).
			Add(makespanMetric(m.r.VirtualMakespanS))
	}
	report.AddGroup("overhead", "enabled vs disabled").
		Add(bench.Metric{Name: "allocs_pct", Value: overhead["allocs_pct"], Unit: "%",
			Better: bench.Lower, AbsNoise: profMaxAllocOverheadPct}).
		Add(infoMetric("wall_pct", "%", overhead["wall_pct"]))
	report.AddGroup("attribution", "seed-42 enabled run").
		Add(bench.Metric{Name: "wall_coverage", Value: coverage,
			Better: bench.Higher, AbsNoise: 1 - profMinWallCoverage}).
		Add(infoMetric("run_wall_ns", "ns", float64(detail.runWallNs))).
		Add(infoMetric("attributed_wall_ns", "ns", float64(detail.prof.TotalWallNs())))
	// Per-site aggregates from the deterministic snapshot: region and
	// sample counts and virtual time reproduce bit-exactly at a fixed
	// seed, so they gate regeneration; the measured overlay is wall-
	// dependent and rides along as information only.
	for _, s := range snap.Sites {
		report.AddGroup("site/"+s.Site, "subsystem "+s.Subsystem).
			Add(exactMetric("count", float64(s.Count))).
			Add(exactMetric("samples", float64(s.Samples))).
			Add(exactMetric("virtual_ns", float64(s.VirtualNs)))
	}
	for _, m := range detail.prof.Measured() {
		if g := report.Group("site/" + m.Site); g != nil {
			g.Add(infoMetric("wall_ns", "ns", float64(m.WallNs))).
				Add(infoMetric("self_wall_ns", "ns", float64(m.SelfWallNs))).
				Add(infoMetric("alloc_bytes_est", "B", float64(m.AllocBytes)))
		}
	}
	if err := writeReport(report, outPath); err != nil {
		return err
	}

	foldedPath := strings.TrimSuffix(outPath, ".json") + ".folded"
	ff, err := os.Create(foldedPath)
	if err != nil {
		return err
	}
	if err := detail.prof.WriteFolded(ff, prof.WeightWall); err != nil {
		ff.Close()
		return err
	}
	if err := ff.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", foldedPath)

	for _, m := range []struct {
		name string
		r    profModeResult
	}{{"disabled", dis}, {"enabled", en}} {
		fmt.Printf("  %-9s %12d ns/op %12d B/op %10d allocs/op  makespan %.0fs\n",
			m.name, m.r.NsPerOp, m.r.BytesPerOp, m.r.AllocsPerOp, m.r.VirtualMakespanS)
	}
	fmt.Printf("  overhead  wall %+.2f%%  allocs %+.2f%%  virtual makespan +0%% (bit-exact)\n",
		overhead["wall_pct"], overhead["allocs_pct"])
	fmt.Printf("  coverage  %.1f%% of run wall attributed across %d live sites\n",
		coverage*100, len(snap.Sites))
	return nil
}

// measureProfMode runs the macro profBenchIters times (seeds 42, 43, ...)
// and averages wall time and allocations; the seed-42 run also yields the
// makespan and, when the profiler is on, the artifact detail.
func measureProfMode(opts prof.Options) (profModeResult, *profDetail, error) {
	var out profModeResult
	var detail *profDetail
	// One untimed warmup so neither mode pays first-run cache effects.
	if _, err := runProfMacroOnce(41, opts); err != nil {
		return out, nil, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < profBenchIters; i++ {
		iterStart := time.Now()
		res, err := runProfMacroOnce(uint64(42+i), opts)
		if err != nil {
			return out, nil, err
		}
		if i == 0 {
			out.VirtualMakespanS = (res.Finish - res.Start).Seconds()
			if res.Prof != nil {
				detail = &profDetail{prof: res.Prof, runWallNs: time.Since(iterStart).Nanoseconds()}
			}
		}
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	out.NsPerOp = wall.Nanoseconds() / profBenchIters
	out.BytesPerOp = int64(after.TotalAlloc-before.TotalAlloc) / profBenchIters
	out.AllocsPerOp = int64(after.Mallocs-before.Mallocs) / profBenchIters
	return out, detail, nil
}

func runProfMacroOnce(seed uint64, opts prof.Options) (experiments.SaturationResult, error) {
	return experiments.RunSaturation(experiments.SaturationSpec{
		Seed:        seed,
		Campaigns:   macroCamps,
		Budget:      macroBudget,
		Parallelism: 4,
		Prof:        opts,
	})
}
