// Root acceptance test for the sharded simulation spine: running the
// saturation workload with per-site PDES shards must reproduce the
// sequential spine's fixed-seed trajectory byte for byte. The comparison
// covers virtual timing (start/finish), work done, and the full metrics
// registry rendered to JSON — any divergence in event order anywhere in the
// stack (scheduler decisions, retries, gossip, knowledge sync) shows up as
// a diff in one of those.
package aisle

import (
	"bytes"
	"testing"

	"github.com/aisle-sim/aisle/internal/experiments"
)

func runSaturationSnapshot(t *testing.T, parallelism int, shards bool) (experiments.SaturationResult, []byte) {
	t.Helper()
	res, err := experiments.RunSaturation(experiments.SaturationSpec{
		Seed:        42,
		Campaigns:   40,
		Budget:      6,
		Parallelism: parallelism,
		Shards:      shards,
	})
	if err != nil {
		t.Fatalf("parallelism %d shards=%v: %v", parallelism, shards, err)
	}
	var buf bytes.Buffer
	if err := res.Metrics.WriteJSON(&buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return res, buf.Bytes()
}

func TestShardedSpineMatchesSequential(t *testing.T) {
	for _, p := range []int{1, 4, 16} {
		seqRes, seqSnap := runSaturationSnapshot(t, p, false)
		shRes, shSnap := runSaturationSnapshot(t, p, true)

		if seqRes.Start != shRes.Start || seqRes.Finish != shRes.Finish {
			t.Errorf("P%d: timing diverged: sequential [%v, %v] vs sharded [%v, %v]",
				p, seqRes.Start, seqRes.Finish, shRes.Start, shRes.Finish)
		}
		if seqRes.Done != shRes.Done || seqRes.Executed != shRes.Executed {
			t.Errorf("P%d: work diverged: sequential done=%d executed=%d vs sharded done=%d executed=%d",
				p, seqRes.Done, seqRes.Executed, shRes.Done, shRes.Executed)
		}
		if !bytes.Equal(seqSnap, shSnap) {
			t.Errorf("P%d: metrics snapshots differ (%d vs %d bytes)",
				p, len(seqSnap), len(shSnap))
		}
	}
}
