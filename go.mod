module github.com/aisle-sim/aisle

go 1.22
