package aisle_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestExamples builds and runs every program under examples/: each is a
// complete federation scenario, so together they exercise the public facade
// end to end (assembly, campaigns, scheduling, tracing, chaos, health).
// Programs run in a scratch directory so artifact writers (Chrome traces,
// metric snapshots) cannot litter the repository.
func TestExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("examples run full simulations; skipped in -short mode")
	}
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := filepath.Glob(filepath.Join(root, "examples", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no example programs found under examples/")
	}
	for _, dir := range dirs {
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			continue
		}
		name := filepath.Base(dir)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			scratch := t.TempDir()
			bin := filepath.Join(scratch, name)
			build := exec.Command("go", "build", "-o", bin, "./examples/"+name)
			build.Dir = root
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("building %s: %v\n%s", name, err, out)
			}
			run := exec.Command(bin)
			run.Dir = scratch
			out, err := run.CombinedOutput()
			if err != nil {
				t.Fatalf("running %s: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("%s produced no output", name)
			}
		})
	}
}
